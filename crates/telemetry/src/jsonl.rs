//! The JSON Lines trace schema: one flat JSON object per event.
//!
//! Every line has the envelope keys `t` (simulated nanoseconds, integer),
//! `pid` (integer), `collector` (string), and `event` (the snake_case tag
//! from [`EventKind::tag`]); payload fields follow, all scalar, so a replay
//! tool can parse lines with any JSON reader without nested-object
//! handling. [`parse`] is the exact inverse of [`to_json`] (round-trip
//! tested), which is what makes traces replayable.

use std::borrow::Cow;

use simtime::Nanos;

use crate::event::{CollectionKind, Event, EventKind, GcPhase};

/// Serializes one event as a single JSON object (no trailing newline).
pub fn to_json(event: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"t\":");
    s.push_str(&event.t.as_nanos().to_string());
    s.push_str(",\"pid\":");
    s.push_str(&event.pid.to_string());
    s.push_str(",\"collector\":\"");
    // Collector labels are identifier-like; escape defensively anyway.
    for c in event.collector.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push_str("\",\"event\":\"");
    s.push_str(event.kind.tag());
    s.push('"');
    let mut field = |k: &str, v: &str, quoted: bool| {
        s.push_str(",\"");
        s.push_str(k);
        s.push_str("\":");
        if quoted {
            s.push('"');
            s.push_str(v);
            s.push('"');
        } else {
            s.push_str(v);
        }
    };
    match &event.kind {
        EventKind::CollectionBegin { kind } | EventKind::CollectionEnd { kind } => {
            field("kind", kind.name(), true);
        }
        EventKind::PhaseBegin { phase } | EventKind::PhaseEnd { phase } => {
            field("phase", phase.name(), true);
        }
        EventKind::Fault { page, major } => {
            field("page", &page.to_string(), false);
            field("major", if *major { "true" } else { "false" }, false);
        }
        EventKind::Evicted { page, hard } => {
            field("page", &page.to_string(), false);
            field("hard", if *hard { "true" } else { "false" }, false);
        }
        EventKind::EvictionScheduled { page }
        | EventKind::MadeResident { page }
        | EventKind::ProtectionTrap { page }
        | EventKind::Discard { page }
        | EventKind::Relinquish { page }
        | EventKind::BookmarkSet { page }
        | EventKind::BookmarkCleared { page }
        | EventKind::BookmarkScanned { page } => {
            field("page", &page.to_string(), false);
        }
        EventKind::HeapShrink {
            budget_pages,
            reason,
        }
        | EventKind::HeapGrow {
            budget_pages,
            reason,
        } => {
            field("budget_pages", &budget_pages.to_string(), false);
            field("reason", reason, true);
        }
        EventKind::TraceWorker {
            worker,
            packets,
            steals,
            objects,
            busy_ns,
            idle_ns,
        } => {
            field("worker", &worker.to_string(), false);
            field("packets", &packets.to_string(), false);
            field("steals", &steals.to_string(), false);
            field("objects", &objects.to_string(), false);
            field("busy_ns", &busy_ns.to_string(), false);
            field("idle_ns", &idle_ns.to_string(), false);
        }
        EventKind::Residency {
            superpage,
            resident,
            total,
        } => {
            field("superpage", &superpage.to_string(), false);
            field("resident", &resident.to_string(), false);
            field("total", &total.to_string(), false);
        }
    }
    s.push('}');
    s
}

/// Scans one flat JSON object into `(key, value)` pairs. Values keep their
/// quotes stripped; escapes are unescaped. Returns `None` on malformed
/// input.
fn scan_flat_object(line: &str) -> Option<Vec<(String, String)>> {
    let line = line.trim();
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut pairs = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        if chars.next()? != '"' {
            return None;
        }
        let mut key = String::new();
        loop {
            match chars.next()? {
                '"' => break,
                '\\' => key.push(chars.next()?),
                c => key.push(c),
            }
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next()? != ':' {
            return None;
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        // Value: string or bare scalar.
        let mut val = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next()? {
                    '"' => break,
                    '\\' => match chars.next()? {
                        'u' => {
                            let code: String = (0..4).filter_map(|_| chars.next()).collect();
                            let v = u32::from_str_radix(&code, 16).ok()?;
                            val.push(char::from_u32(v)?);
                        }
                        c => val.push(c),
                    },
                    c => val.push(c),
                }
            }
        } else {
            while matches!(chars.peek(), Some(c) if !c.is_whitespace() && *c != ',') {
                val.push(chars.next()?);
            }
        }
        pairs.push((key, val));
    }
    Some(pairs)
}

/// Parses one JSONL line back into an [`Event`] (inverse of [`to_json`]).
pub fn parse(line: &str) -> Option<Event> {
    let pairs = scan_flat_object(line)?;
    let get = |k: &str| -> Option<&str> {
        pairs
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    let num = |k: &str| -> Option<u64> { get(k)?.parse().ok() };
    let page = |k: &str| -> Option<u32> { get(k)?.parse().ok() };
    let flag = |k: &str| -> Option<bool> {
        match get(k)? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    };
    let kind = match get("event")? {
        "collection_begin" => EventKind::CollectionBegin {
            kind: CollectionKind::from_name(get("kind")?)?,
        },
        "collection_end" => EventKind::CollectionEnd {
            kind: CollectionKind::from_name(get("kind")?)?,
        },
        "phase_begin" => EventKind::PhaseBegin {
            phase: GcPhase::from_name(get("phase")?)?,
        },
        "phase_end" => EventKind::PhaseEnd {
            phase: GcPhase::from_name(get("phase")?)?,
        },
        "fault" => EventKind::Fault {
            page: page("page")?,
            major: flag("major")?,
        },
        "eviction_scheduled" => EventKind::EvictionScheduled {
            page: page("page")?,
        },
        "evicted" => EventKind::Evicted {
            page: page("page")?,
            hard: flag("hard")?,
        },
        "made_resident" => EventKind::MadeResident {
            page: page("page")?,
        },
        "protection_trap" => EventKind::ProtectionTrap {
            page: page("page")?,
        },
        "discard" => EventKind::Discard {
            page: page("page")?,
        },
        "relinquish" => EventKind::Relinquish {
            page: page("page")?,
        },
        "bookmark_set" => EventKind::BookmarkSet {
            page: page("page")?,
        },
        "bookmark_cleared" => EventKind::BookmarkCleared {
            page: page("page")?,
        },
        "bookmark_scanned" => EventKind::BookmarkScanned {
            page: page("page")?,
        },
        "heap_shrink" => EventKind::HeapShrink {
            budget_pages: page("budget_pages")?,
            reason: Cow::Owned(get("reason")?.to_string()),
        },
        "heap_grow" => EventKind::HeapGrow {
            budget_pages: page("budget_pages")?,
            reason: Cow::Owned(get("reason")?.to_string()),
        },
        "trace_worker" => EventKind::TraceWorker {
            worker: page("worker")?,
            packets: num("packets")?,
            steals: num("steals")?,
            objects: num("objects")?,
            busy_ns: num("busy_ns")?,
            idle_ns: num("idle_ns")?,
        },
        "residency" => EventKind::Residency {
            superpage: page("superpage")?,
            resident: page("resident")?,
            total: page("total")?,
        },
        _ => return None,
    };
    Some(Event {
        t: Nanos(num("t")?),
        pid: num("pid")? as u32,
        collector: Cow::Owned(get("collector")?.to_string()),
        kind,
    })
}

/// Parses a whole JSONL document, skipping blank lines; `None` if any
/// non-blank line is malformed.
pub fn parse_all(text: &str) -> Option<Vec<Event>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse)
        .collect()
}
