//! The deterministic discrete-event engine.

use heap::{GcHeap, MemCtx, OutOfMemory};
use simtime::{Clock, Nanos};
use vmm::{ProcessId, Vmm};

use crate::program::{Program, ProgramStatus};
use crate::signalmem::Signalmem;

/// One simulated JVM: a collector plus the program driving it.
pub struct JvmProcess {
    /// The process id in the shared VMM.
    pub pid: ProcessId,
    /// The collector under test.
    pub gc: Box<dyn GcHeap>,
    /// The benchmark program.
    pub program: Box<dyn Program>,
    /// This process's clock.
    pub clock: Clock,
    /// Set when the program finished (successfully or not).
    pub finished: bool,
    /// Set when the heap was exhausted.
    pub failed: Option<OutOfMemory>,
    /// Completion instant, if finished successfully.
    pub finish_time: Option<Nanos>,
}

impl core::fmt::Debug for JvmProcess {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JvmProcess")
            .field("pid", &self.pid)
            .field("collector", &self.gc.name())
            .field("program", &self.program.name())
            .field("now", &self.clock.now())
            .field("finished", &self.finished)
            .finish()
    }
}

impl JvmProcess {
    /// Assembles a JVM process.
    pub fn new(pid: ProcessId, gc: Box<dyn GcHeap>, program: Box<dyn Program>) -> JvmProcess {
        JvmProcess {
            pid,
            gc,
            program,
            clock: Clock::new(),
            finished: false,
            failed: None,
            finish_time: None,
        }
    }
}

/// The discrete-event loop: at each iteration the runnable process with the
/// least local time takes one step. JVM steps are one bounded batch of
/// mutator work followed by notification handling and a VMM reclaim pump;
/// signalmem steps pin the next memory increment.
pub struct Engine {
    /// The shared virtual memory manager.
    pub vmm: Vmm,
    /// The JVM processes.
    pub jvms: Vec<JvmProcess>,
    /// The optional pressure driver.
    pub signalmem: Option<Signalmem>,
    /// Abort knob: a run exceeding this many engine steps is reported as
    /// timed out (pathological thrashing would otherwise run unboundedly).
    pub max_steps: u64,
    steps: u64,
    timed_out: bool,
}

impl core::fmt::Debug for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("jvms", &self.jvms)
            .field("steps", &self.steps)
            .finish()
    }
}

impl Engine {
    /// Creates an engine over `vmm`.
    pub fn new(vmm: Vmm) -> Engine {
        Engine {
            vmm,
            jvms: Vec::new(),
            signalmem: None,
            max_steps: 200_000_000,
            steps: 0,
            timed_out: false,
        }
    }

    /// Whether the run hit the step limit.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Engine steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs until every JVM finishes (or the step limit is hit).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Delivers queued paging notifications to every live JVM immediately —
    /// the paper's real-time signals preempt the application (§4.1:
    /// "these signals cannot be lost"), so handlers run as soon as the
    /// kernel raises them, not at the process's next scheduling quantum.
    fn deliver_signals(&mut self) {
        for jvm in &mut self.jvms {
            if !jvm.finished && self.vmm.has_events(jvm.pid) {
                let mut ctx = MemCtx::new(&mut self.vmm, &mut jvm.clock, jvm.pid);
                jvm.gc.handle_vm_events(&mut ctx);
            }
        }
    }

    /// Executes one event; returns whether more work remains.
    pub fn step(&mut self) -> bool {
        if self.steps >= self.max_steps {
            self.timed_out = true;
            return false;
        }
        self.steps += 1;
        // Pick the runnable actor with the least local time.
        let jvm_next = self
            .jvms
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.finished)
            .min_by_key(|(_, j)| j.clock.now())
            .map(|(i, j)| (i, j.clock.now()));
        let sm_next = self
            .signalmem
            .as_ref()
            .filter(|sm| !sm.done())
            .map(super::signalmem::Signalmem::now);
        match (jvm_next, sm_next) {
            (None, _) => false, // every JVM done: ignore remaining pressure
            (Some((_, jt)), Some(st)) if st <= jt => {
                let sm = self.signalmem.as_mut().unwrap();
                sm.step(&mut self.vmm);
                self.deliver_signals();
                true
            }
            (Some((i, _)), _) => {
                let jvm = &mut self.jvms[i];
                let mut ctx = MemCtx::new(&mut self.vmm, &mut jvm.clock, jvm.pid);
                match jvm.program.step(jvm.gc.as_mut(), &mut ctx) {
                    Ok(ProgramStatus::Running) => {}
                    Ok(ProgramStatus::Finished) => {
                        jvm.finished = true;
                        jvm.finish_time = Some(jvm.clock.now());
                    }
                    Err(oom) => {
                        jvm.finished = true;
                        jvm.failed = Some(oom);
                    }
                }
                // Let kswapd work, then deliver any notifications it (or
                // this step's faults) raised — to every instance.
                self.vmm.pump(&mut jvm.clock);
                self.deliver_signals();
                self.jvms.iter().any(|j| !j.finished)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signalmem::{Signalmem, SignalmemConfig};
    use crate::{CollectorKind, Program};
    use heap::AllocKind;
    use simtime::CostModel;
    use vmm::VmmConfig;

    /// Allocates `n` objects, dropping each immediately.
    struct Mill {
        left: usize,
    }

    impl Program for Mill {
        fn step(
            &mut self,
            gc: &mut dyn GcHeap,
            ctx: &mut MemCtx<'_>,
        ) -> Result<ProgramStatus, OutOfMemory> {
            for _ in 0..50 {
                if self.left == 0 {
                    return Ok(ProgramStatus::Finished);
                }
                let h = gc.alloc(
                    ctx,
                    AllocKind::Scalar {
                        data_words: 4,
                        num_refs: 0,
                    },
                )?;
                gc.drop_handle(h);
                self.left -= 1;
            }
            Ok(ProgramStatus::Running)
        }

        fn name(&self) -> &str {
            "mill"
        }

        fn progress(&self) -> f64 {
            0.0
        }
    }

    fn engine_with(n_jvms: usize, memory: usize) -> Engine {
        let mut vmm = Vmm::new(
            VmmConfig::builder().memory_bytes(memory).build(),
            CostModel::default(),
        );
        let mut jvms = Vec::new();
        for _ in 0..n_jvms {
            let pid = vmm.register_process();
            let gc = CollectorKind::Bc.build(4 << 20, telemetry::Tracer::disabled(), &mut vmm, pid);
            jvms.push(JvmProcess::new(pid, gc, Box::new(Mill { left: 2_000 })));
        }
        let mut engine = Engine::new(vmm);
        engine.jvms = jvms;
        engine
    }

    #[test]
    fn engine_runs_single_jvm_to_completion() {
        let mut e = engine_with(1, 64 << 20);
        e.run_to_completion();
        assert!(e.jvms[0].finished);
        assert!(e.jvms[0].failed.is_none());
        assert!(e.jvms[0].finish_time.is_some());
        assert!(!e.timed_out());
        assert!(e.steps() >= 2_000 / 50);
    }

    #[test]
    fn engine_interleaves_jvms_by_local_time() {
        let mut e = engine_with(2, 64 << 20);
        e.run_to_completion();
        assert!(e.jvms.iter().all(|j| j.finished));
        // Identical workloads on a calm machine finish at identical times.
        assert_eq!(e.jvms[0].finish_time, e.jvms[1].finish_time);
    }

    #[test]
    fn step_limit_reports_timeout() {
        let mut e = engine_with(1, 64 << 20);
        e.max_steps = 3;
        e.run_to_completion();
        assert!(e.timed_out());
        assert!(!e.jvms[0].finished);
    }

    #[test]
    fn signalmem_is_scheduled_between_jvm_steps() {
        let mut e = engine_with(1, 16 << 20);
        let sm_pid = e.vmm.register_process();
        e.signalmem = Some(Signalmem::new(
            SignalmemConfig {
                initial_pages: 64,
                step_pages: 16,
                interval: simtime::Nanos::from_micros(50),
                total_pages: 512,
                start_at: simtime::Nanos::ZERO,
            },
            sm_pid,
        ));
        e.run_to_completion();
        assert!(e.jvms[0].finished);
        assert!(e.vmm.stats(sm_pid).locked > 0, "signalmem never pinned");
    }
}
