//! The `signalmem` memory-pressure driver (§5.1).
//!
//! "We then use an external process we call signalmem. … Once alerted,
//! signalmem uses mmap to allocate a large array, touches these pages, and
//! then pins them in memory with mlock. The initial amount of memory, total
//! amount of memory, and rate at which this memory is pinned are specified
//! via command-line parameters."

use simtime::{Clock, Nanos};
use vmm::{ProcessId, VirtPage, Vmm};

/// Configuration for a [`Signalmem`] process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignalmemConfig {
    /// Pages pinned immediately when the driver starts.
    pub initial_pages: usize,
    /// Pages pinned per interval thereafter.
    pub step_pages: usize,
    /// Interval between increments (the paper uses 1 MB / 100 ms).
    pub interval: Nanos,
    /// Total pages to pin.
    pub total_pages: usize,
    /// Simulated instant at which pinning begins.
    pub start_at: Nanos,
}

impl SignalmemConfig {
    /// The paper's dynamic-pressure shape (§5.3.2): 30 MB immediately,
    /// then 1 MB every 100 ms until `total_bytes` are pinned.
    pub fn dynamic(total_bytes: usize, start_at: Nanos) -> SignalmemConfig {
        SignalmemConfig {
            initial_pages: (30 << 20) / vmm::PAGE_BYTES,
            step_pages: (1 << 20) / vmm::PAGE_BYTES,
            interval: Nanos::from_millis(100),
            total_pages: total_bytes / vmm::PAGE_BYTES,
            start_at,
        }
    }

    /// Steady pressure (§5.3.1): pin everything at once at `start_at`.
    pub fn steady(total_bytes: usize, start_at: Nanos) -> SignalmemConfig {
        SignalmemConfig {
            initial_pages: total_bytes / vmm::PAGE_BYTES,
            step_pages: 0,
            interval: Nanos::from_millis(100),
            total_pages: total_bytes / vmm::PAGE_BYTES,
            start_at,
        }
    }
}

/// The pressure-driver process.
#[derive(Debug)]
pub struct Signalmem {
    config: SignalmemConfig,
    pid: ProcessId,
    clock: Clock,
    pinned: usize,
    started: bool,
}

impl Signalmem {
    /// Creates a driver owning `pid` in the shared VMM.
    pub fn new(config: SignalmemConfig, pid: ProcessId) -> Signalmem {
        let mut clock = Clock::new();
        clock.advance(config.start_at);
        Signalmem {
            config,
            pid,
            clock,
            pinned: 0,
            started: false,
        }
    }

    /// The driver's local clock (for engine scheduling).
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Whether the driver has pinned its full target.
    pub fn done(&self) -> bool {
        self.pinned >= self.config.total_pages
    }

    /// Pages pinned so far.
    pub fn pinned_pages(&self) -> usize {
        self.pinned
    }

    /// Performs the next pinning increment, advancing the local clock to
    /// the following one.
    pub fn step(&mut self, vmm: &mut Vmm) {
        debug_assert!(!self.done());
        let batch = if self.started {
            self.config.step_pages
        } else {
            self.started = true;
            self.config.initial_pages.max(1)
        };
        let batch = batch.min(self.config.total_pages - self.pinned);
        let mut locked = 0;
        for i in 0..batch {
            // The kernel will not hand out its emergency reserve: mlock
            // stalls once free frames reach the reclaim watermark, and the
            // driver retries the remainder at the next interval (after
            // kswapd has had a chance to free memory).
            if vmm.free_frames() <= vmm.config().low_watermark {
                break;
            }
            vmm.mlock(
                self.pid,
                VirtPage::new((self.pinned + i) as u32),
                &mut self.clock,
            );
            locked += 1;
        }
        self.pinned += locked;
        self.clock.advance(self.config.interval);
        vmm.pump(&mut self.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::CostModel;
    use vmm::VmmConfig;

    #[test]
    fn dynamic_shape_matches_the_paper() {
        let c = SignalmemConfig::dynamic(100 << 20, Nanos::ZERO);
        assert_eq!(c.initial_pages, 7680); // 30 MB
        assert_eq!(c.step_pages, 256); // 1 MB
        assert_eq!(c.interval, Nanos::from_millis(100));
        assert_eq!(c.total_pages, 25600);
    }

    #[test]
    fn pins_initial_then_rate() {
        let mut vmm = Vmm::new(
            VmmConfig::builder().memory_bytes(64 << 20).build(),
            CostModel::default(),
        );
        let pid = vmm.register_process();
        let mut sm = Signalmem::new(
            SignalmemConfig {
                initial_pages: 100,
                step_pages: 10,
                interval: Nanos::from_millis(100),
                total_pages: 130,
                start_at: Nanos::from_millis(5),
            },
            pid,
        );
        assert_eq!(sm.now(), Nanos::from_millis(5));
        sm.step(&mut vmm);
        assert_eq!(sm.pinned_pages(), 100);
        assert_eq!(vmm.stats(pid).locked, 100);
        assert!(!sm.done());
        sm.step(&mut vmm);
        sm.step(&mut vmm);
        sm.step(&mut vmm);
        assert!(sm.done());
        assert_eq!(vmm.stats(pid).locked, 130);
        // Clock advanced one interval per step.
        assert!(sm.now() >= Nanos::from_millis(405));
    }
}
