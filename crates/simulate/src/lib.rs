//! The execution engine and experiment harnesses for *Garbage Collection
//! Without Paging*.
//!
//! This crate ties the pieces together:
//!
//! * [`Program`] — the mutator interface workload generators implement;
//! * [`CollectorKind`] — a registry of every collector the paper evaluates
//!   (the five baselines, their fixed-nursery variants, BC, and the
//!   resizing-only BC ablation);
//! * [`Signalmem`] — the paper's memory-pressure driver (§5.1): it maps,
//!   touches and `mlock`s memory at a configurable initial size, rate, and
//!   target;
//! * [`Engine`] — a deterministic discrete-event loop interleaving any
//!   number of JVM processes and pressure drivers over one shared
//!   [`vmm::Vmm`], by least simulated time;
//! * [`Scheduler`] — a round-robin time-slice scheduler for fleets of
//!   hundreds to thousands of tenants, with O(1) scheduling decisions and
//!   O(events) notification delivery ([`experiments::run_fleet`]);
//! * [`run`]/[`RunConfig`]/[`RunResult`] — one benchmark execution with
//!   full metrics (execution time, pause statistics, paging counters, GC
//!   counters, BMU inputs);
//! * [`min_heap_search`] — the Table 1 minimum-heap measurement;
//! * [`experiments`] — parameter sweeps reproducing each figure.

#![warn(missing_docs)]

mod collector_kind;
mod engine;
pub mod experiments;
mod program;
mod runner;
mod sched;
mod signalmem;

pub use collector_kind::CollectorKind;
pub use engine::{Engine, JvmProcess};
pub use heap::{InjectFault, PolicyKind, SanitizeLevel};
pub use program::{Program, ProgramStatus};
pub use runner::{min_heap_search, run, run_multi, MultiRunResult, RunConfig, RunResult};
pub use sched::Scheduler;
pub use signalmem::{Signalmem, SignalmemConfig};
