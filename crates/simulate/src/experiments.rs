//! Parameter sweeps reproducing the paper's experiments (§5).
//!
//! Each function runs one experimental condition and returns raw
//! [`RunResult`]s; the `bench` crate's `figures` binary formats them into
//! the tables and series the paper plots. Workload construction is left to
//! a caller-supplied factory so these harnesses work with any benchmark
//! from the `workloads` crate.

use heap::{GcStats, SanitizeLevel};
use simtime::{CostModel, Nanos};
use vmm::{VmStats, Vmm, VmmConfig};

use crate::engine::JvmProcess;
use crate::program::Program;
use crate::runner::{run, run_multi, MultiRunResult, RunConfig, RunResult};
use crate::sched::Scheduler;
use crate::signalmem::SignalmemConfig;
use crate::CollectorKind;

/// A workload factory: builds a fresh instance of the benchmark program.
pub type MakeProgram<'a> = &'a dyn Fn() -> Box<dyn Program>;

/// One point of a heap-size sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The heap size of this run.
    pub heap_bytes: usize,
    /// The run's metrics.
    pub result: RunResult,
}

/// Figure 2: execution time as a function of heap size, without memory
/// pressure (physical memory is ample).
pub fn no_pressure_sweep(
    collector: CollectorKind,
    heaps: &[usize],
    memory_bytes: usize,
    make: MakeProgram<'_>,
) -> Vec<SweepPoint> {
    heaps
        .iter()
        .map(|&heap_bytes| {
            let config = RunConfig::new(collector, heap_bytes, memory_bytes);
            SweepPoint {
                heap_bytes,
                result: run(&config, make()),
            }
        })
        .collect()
}

/// Figure 3: steady memory pressure. Signalmem immediately pins
/// `pin_fraction` of the heap size (the paper pins 60 %), simulating
/// another process's working set.
pub fn steady_pressure(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    pin_fraction: f64,
    make: MakeProgram<'_>,
) -> RunResult {
    let config = steady_pressure_config(collector, heap_bytes, memory_bytes, pin_fraction);
    run(&config, make())
}

/// The [`RunConfig`] behind [`steady_pressure`], for callers that want to
/// adjust it (e.g. attach a [`telemetry::Tracer`]) before running.
pub fn steady_pressure_config(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    pin_fraction: f64,
) -> RunConfig {
    let pinned = (heap_bytes as f64 * pin_fraction) as usize;
    let mut config = RunConfig::new(collector, heap_bytes, memory_bytes);
    config.pressure = Some(SignalmemConfig::steady(pinned, Nanos::from_millis(1)));
    config
}

/// Figures 4–6: dynamic memory pressure. Signalmem pins 30 MB (scaled by
/// `scale`), then 1 MB (scaled) per 100 ms, until available memory falls to
/// `target_available_bytes`.
pub fn dynamic_pressure(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    target_available_bytes: usize,
    scale: f64,
    make: MakeProgram<'_>,
) -> RunResult {
    let config = dynamic_pressure_config(
        collector,
        heap_bytes,
        memory_bytes,
        target_available_bytes,
        scale,
    );
    run(&config, make())
}

/// The [`RunConfig`] behind [`dynamic_pressure`], for callers that want to
/// adjust it (e.g. attach a [`telemetry::Tracer`]) before running.
pub fn dynamic_pressure_config(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    target_available_bytes: usize,
    scale: f64,
) -> RunConfig {
    let total = memory_bytes.saturating_sub(target_available_bytes);
    let mut pressure = SignalmemConfig::dynamic(total, Nanos::from_millis(1));
    // The ramp scales with the workload: at `scale` volume the run is
    // `scale` times shorter, so the 30 MB + 1 MB/100 ms shape shrinks by
    // the same factor to hit the same phase of execution.
    pressure.initial_pages = ((pressure.initial_pages as f64) * scale) as usize;
    pressure.step_pages = ((pressure.step_pages as f64) * scale).max(1.0) as usize;
    // (The extra 0.2 matches the simulator's shorter calm-run times: the
    // ramp completes in the first half of a calm-speed run, as in the
    // paper, so every collector faces the same end-state pressure for a
    // substantial fraction of its execution.)
    pressure.interval = Nanos((pressure.interval.as_nanos() as f64 * scale * 0.2) as u64);
    let mut config = RunConfig::new(collector, heap_bytes, memory_bytes);
    config.pressure = Some(pressure);
    config
}

/// Figure 7: two JVM instances running simultaneously, each with its own
/// heap of `heap_bytes`, with physical memory restricted to
/// `memory_bytes`.
pub fn multi_jvm(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    make: MakeProgram<'_>,
) -> MultiRunResult {
    let config = RunConfig::new(collector, heap_bytes, memory_bytes);
    run_multi(&config, vec![make(), make()])
}

/// Configuration for a scaled multi-tenant run (the `fig7_scale`
/// experiment): `tenants` simulated mutators sharing one sharded VMM under
/// a round-robin time-slice [`Scheduler`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The collector every tenant runs.
    pub collector: CollectorKind,
    /// Number of simulated mutator processes.
    pub tenants: usize,
    /// Per-tenant heap size.
    pub tenant_heap_bytes: usize,
    /// Physical memory shared by the whole fleet.
    pub memory_bytes: usize,
    /// VMM shard count (frame pool and page-table partitions).
    pub shards: usize,
    /// Scheduler time slice.
    pub quantum: Nanos,
    /// Scheduler abort knob.
    pub max_slices: u64,
    /// Sanitizer level for every tenant heap (`Off` by default).
    pub sanitize: SanitizeLevel,
}

impl FleetConfig {
    /// A fleet of `tenants` processes of `collector`, with shard count
    /// scaled to the tenancy (one shard per 256 tenants, capped at 8).
    pub fn new(
        collector: CollectorKind,
        tenants: usize,
        tenant_heap_bytes: usize,
        memory_bytes: usize,
    ) -> FleetConfig {
        FleetConfig {
            collector,
            tenants,
            tenant_heap_bytes,
            memory_bytes,
            shards: (tenants / 256).clamp(1, 8),
            quantum: Nanos::from_micros(100),
            max_slices: 50_000_000,
            sanitize: SanitizeLevel::Off,
        }
    }
}

/// One tenant's outcome in a fleet run.
#[derive(Clone, Copy, Debug)]
pub struct TenantResult {
    /// Whether this tenant's heap was exhausted.
    pub oom: bool,
    /// Completion instant (this tenant's virtual CPU), if it finished.
    pub finish_time: Option<Nanos>,
    /// Paging counters.
    pub vm: VmStats,
    /// Collector counters.
    pub gc: GcStats,
}

impl TenantResult {
    /// Whether the tenant completed normally.
    pub fn ok(&self) -> bool {
        !self.oom && self.finish_time.is_some()
    }
}

/// Results of a fleet run, including the per-tenant counters the fairness
/// statistics are computed from.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-tenant outcomes, in registration order.
    pub tenants: Vec<TenantResult>,
    /// Wall-clock elapsed: the latest tenant finish time.
    pub total_elapsed: Nanos,
    /// Notification deliveries across the fleet (the pump-cost counter;
    /// stays proportional to events however many tenants idle).
    pub deliveries: u64,
    /// Scheduler slices executed.
    pub slices: u64,
    /// Whether the scheduler hit its slice limit.
    pub timed_out: bool,
}

impl FleetResult {
    /// How many tenants completed normally.
    pub fn completed(&self) -> usize {
        self.tenants.iter().filter(|t| t.ok()).count()
    }
}

/// Scaled Figure 7: `config.tenants` simultaneous mutators (hundreds to
/// thousands) time-sliced over one sharded VMM. `make` builds tenant `i`'s
/// program; callers split a constant total workload across the fleet so
/// runs are comparable along the tenancy axis.
pub fn run_fleet(config: &FleetConfig, make: &dyn Fn(usize) -> Box<dyn Program>) -> FleetResult {
    let mut vmm = Vmm::new(
        VmmConfig::builder()
            .memory_bytes(config.memory_bytes)
            .shards(config.shards)
            .build(),
        CostModel::default(),
    );
    let mut tenants = Vec::with_capacity(config.tenants);
    for i in 0..config.tenants {
        let pid = vmm.register_process();
        let gc = config.collector.build_with_policy(
            config.tenant_heap_bytes,
            None,
            config.sanitize,
            None,
            1,
            telemetry::Tracer::disabled(),
            &mut vmm,
            pid,
        );
        tenants.push(JvmProcess::new(pid, gc, make(i)));
    }
    let mut sched = Scheduler::new(vmm, config.quantum);
    sched.tenants = tenants;
    sched.max_slices = config.max_slices;
    sched.run_to_completion();
    let results: Vec<TenantResult> = sched
        .tenants
        .iter()
        .map(|t| TenantResult {
            oom: t.failed.is_some(),
            finish_time: t.finish_time,
            vm: *sched.vmm.stats(t.pid),
            gc: *t.gc.stats(),
        })
        .collect();
    let total_elapsed = results
        .iter()
        .filter_map(|t| t.finish_time)
        .max()
        .unwrap_or(Nanos::ZERO);
    FleetResult {
        tenants: results,
        total_elapsed,
        deliveries: sched.total_deliveries(),
        slices: sched.slices(),
        timed_out: sched.timed_out(),
    }
}
