//! Parameter sweeps reproducing the paper's experiments (§5).
//!
//! Each function runs one experimental condition and returns raw
//! [`RunResult`]s; the `bench` crate's `figures` binary formats them into
//! the tables and series the paper plots. Workload construction is left to
//! a caller-supplied factory so these harnesses work with any benchmark
//! from the `workloads` crate.

use simtime::Nanos;

use crate::program::Program;
use crate::runner::{run, run_multi, MultiRunResult, RunConfig, RunResult};
use crate::signalmem::SignalmemConfig;
use crate::CollectorKind;

/// A workload factory: builds a fresh instance of the benchmark program.
pub type MakeProgram<'a> = &'a dyn Fn() -> Box<dyn Program>;

/// One point of a heap-size sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The heap size of this run.
    pub heap_bytes: usize,
    /// The run's metrics.
    pub result: RunResult,
}

/// Figure 2: execution time as a function of heap size, without memory
/// pressure (physical memory is ample).
pub fn no_pressure_sweep(
    collector: CollectorKind,
    heaps: &[usize],
    memory_bytes: usize,
    make: MakeProgram<'_>,
) -> Vec<SweepPoint> {
    heaps
        .iter()
        .map(|&heap_bytes| {
            let config = RunConfig::new(collector, heap_bytes, memory_bytes);
            SweepPoint {
                heap_bytes,
                result: run(&config, make()),
            }
        })
        .collect()
}

/// Figure 3: steady memory pressure. Signalmem immediately pins
/// `pin_fraction` of the heap size (the paper pins 60 %), simulating
/// another process's working set.
pub fn steady_pressure(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    pin_fraction: f64,
    make: MakeProgram<'_>,
) -> RunResult {
    let config = steady_pressure_config(collector, heap_bytes, memory_bytes, pin_fraction);
    run(&config, make())
}

/// The [`RunConfig`] behind [`steady_pressure`], for callers that want to
/// adjust it (e.g. attach a [`telemetry::Tracer`]) before running.
pub fn steady_pressure_config(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    pin_fraction: f64,
) -> RunConfig {
    let pinned = (heap_bytes as f64 * pin_fraction) as usize;
    let mut config = RunConfig::new(collector, heap_bytes, memory_bytes);
    config.pressure = Some(SignalmemConfig::steady(pinned, Nanos::from_millis(1)));
    config
}

/// Figures 4–6: dynamic memory pressure. Signalmem pins 30 MB (scaled by
/// `scale`), then 1 MB (scaled) per 100 ms, until available memory falls to
/// `target_available_bytes`.
pub fn dynamic_pressure(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    target_available_bytes: usize,
    scale: f64,
    make: MakeProgram<'_>,
) -> RunResult {
    let config = dynamic_pressure_config(
        collector,
        heap_bytes,
        memory_bytes,
        target_available_bytes,
        scale,
    );
    run(&config, make())
}

/// The [`RunConfig`] behind [`dynamic_pressure`], for callers that want to
/// adjust it (e.g. attach a [`telemetry::Tracer`]) before running.
pub fn dynamic_pressure_config(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    target_available_bytes: usize,
    scale: f64,
) -> RunConfig {
    let total = memory_bytes.saturating_sub(target_available_bytes);
    let mut pressure = SignalmemConfig::dynamic(total, Nanos::from_millis(1));
    // The ramp scales with the workload: at `scale` volume the run is
    // `scale` times shorter, so the 30 MB + 1 MB/100 ms shape shrinks by
    // the same factor to hit the same phase of execution.
    pressure.initial_pages = ((pressure.initial_pages as f64) * scale) as usize;
    pressure.step_pages = ((pressure.step_pages as f64) * scale).max(1.0) as usize;
    // (The extra 0.2 matches the simulator's shorter calm-run times: the
    // ramp completes in the first half of a calm-speed run, as in the
    // paper, so every collector faces the same end-state pressure for a
    // substantial fraction of its execution.)
    pressure.interval = Nanos((pressure.interval.as_nanos() as f64 * scale * 0.2) as u64);
    let mut config = RunConfig::new(collector, heap_bytes, memory_bytes);
    config.pressure = Some(pressure);
    config
}

/// Figure 7: two JVM instances running simultaneously, each with its own
/// heap of `heap_bytes`, with physical memory restricted to
/// `memory_bytes`.
pub fn multi_jvm(
    collector: CollectorKind,
    heap_bytes: usize,
    memory_bytes: usize,
    make: MakeProgram<'_>,
) -> MultiRunResult {
    let config = RunConfig::new(collector, heap_bytes, memory_bytes);
    run_multi(&config, vec![make(), make()])
}
