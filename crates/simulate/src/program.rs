//! The mutator-program interface.

use heap::{GcHeap, MemCtx, OutOfMemory};

/// Outcome of one bounded step of mutator work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramStatus {
    /// More work remains.
    Running,
    /// The program completed its workload.
    Finished,
}

/// A benchmark program driving a collector through the [`GcHeap`] API.
///
/// Programs perform a *bounded* batch of work per [`step`](Program::step)
/// (a few hundred allocations), so the engine can interleave processes and
/// pump the virtual memory manager between steps. Programs must hold only
/// [`heap::Handle`]s across steps — raw addresses do not survive moving
/// collections.
pub trait Program {
    /// Performs one batch of work.
    ///
    /// # Errors
    ///
    /// Propagates [`OutOfMemory`] when the heap cannot satisfy an
    /// allocation; the runner reports the run as failed (used by the
    /// minimum-heap search).
    fn step(
        &mut self,
        gc: &mut dyn GcHeap,
        ctx: &mut MemCtx<'_>,
    ) -> Result<ProgramStatus, OutOfMemory>;

    /// The benchmark's name (for reports).
    fn name(&self) -> &str;

    /// Fraction of the workload completed, in `[0, 1]` (progress display
    /// and sanity checks).
    fn progress(&self) -> f64;
}
