//! A time-slice process scheduler for massive multi-tenant runs.
//!
//! The discrete-event [`Engine`](crate::Engine) picks the globally
//! least-advanced process before every step — faithful interleaving, but
//! O(processes) per scheduling decision, which is fine for the paper's two
//! simultaneous JVMs and hopeless for thousands. The [`Scheduler`] instead
//! runs tenants round-robin in bounded time slices: each scheduling
//! decision is O(1), and paging notifications are delivered through
//! [`Vmm::next_notified`], so the per-slice delivery cost is proportional
//! to the number of *events*, never to the number of registered tenants.
//!
//! As everywhere in the simulator, each tenant owns a virtual CPU (its own
//! [`Clock`]); the machine is shared only through the [`Vmm`]. The quantum
//! bounds how much simulated time a tenant may advance before the reclaim
//! pump and notification delivery run again, which is what keeps eviction
//! pressure and collector responses interleaved fairly across the fleet.

use heap::MemCtx;
use simtime::Nanos;
use vmm::Vmm;

use crate::engine::JvmProcess;
use crate::program::ProgramStatus;

/// A round-robin time-slice scheduler over one shared [`Vmm`].
pub struct Scheduler {
    /// The shared virtual memory manager.
    pub vmm: Vmm,
    /// The tenant processes, in registration order.
    pub tenants: Vec<JvmProcess>,
    /// Simulated time a tenant may advance per slice.
    pub quantum: Nanos,
    /// Abort knob: a run exceeding this many slices is reported as timed
    /// out.
    pub max_slices: u64,
    slices: u64,
    timed_out: bool,
    /// Notification deliveries per tenant (indexed like `tenants`).
    deliveries: Vec<u64>,
    /// Maps `ProcessId::index()` to a `tenants` index.
    pid_to_tenant: Vec<usize>,
}

impl Scheduler {
    /// A scheduler over `vmm` with the given time slice.
    pub fn new(vmm: Vmm, quantum: Nanos) -> Scheduler {
        Scheduler {
            vmm,
            tenants: Vec::new(),
            quantum,
            max_slices: u64::MAX,
            slices: 0,
            timed_out: false,
            deliveries: Vec::new(),
            pid_to_tenant: Vec::new(),
        }
    }

    /// Whether the run hit the slice limit.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Time slices executed.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Notification deliveries per tenant, indexed like
    /// [`tenants`](Scheduler::tenants). A tenant whose mailbox never
    /// receives an event is never visited — the O(events) guarantee the
    /// `fig7_scale` experiment depends on.
    pub fn deliveries(&self) -> &[u64] {
        &self.deliveries
    }

    /// Total notification deliveries across the fleet.
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries.iter().sum()
    }

    /// Runs round-robin slices until every tenant finishes (or the slice
    /// limit is hit).
    pub fn run_to_completion(&mut self) {
        self.deliveries = vec![0; self.tenants.len()];
        self.pid_to_tenant = Vec::new();
        for (i, t) in self.tenants.iter().enumerate() {
            let idx = t.pid.index();
            if idx >= self.pid_to_tenant.len() {
                self.pid_to_tenant.resize(idx + 1, usize::MAX);
            }
            self.pid_to_tenant[idx] = i;
        }
        let mut queue: std::collections::VecDeque<usize> = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished)
            .map(|(i, _)| i)
            .collect();
        while let Some(i) = queue.pop_front() {
            if self.slices >= self.max_slices {
                self.timed_out = true;
                return;
            }
            self.slices += 1;
            self.run_slice(i);
            if !self.tenants[i].finished {
                queue.push_back(i);
            }
        }
    }

    /// Runs tenant `i` until its clock advances one quantum (or it
    /// finishes), then lets kswapd work and delivers any notifications.
    fn run_slice(&mut self, i: usize) {
        let slice_end = self.tenants[i].clock.now() + self.quantum;
        loop {
            let tenant = &mut self.tenants[i];
            if tenant.finished || tenant.clock.now() >= slice_end {
                break;
            }
            let mut ctx = MemCtx::new(&mut self.vmm, &mut tenant.clock, tenant.pid);
            match tenant.program.step(tenant.gc.as_mut(), &mut ctx) {
                Ok(ProgramStatus::Running) => {}
                Ok(ProgramStatus::Finished) => {
                    tenant.finished = true;
                    tenant.finish_time = Some(tenant.clock.now());
                }
                Err(oom) => {
                    tenant.finished = true;
                    tenant.failed = Some(oom);
                }
            }
        }
        self.vmm.pump(&mut self.tenants[i].clock);
        self.deliver();
    }

    /// Drains the VMM's notification queue, handing each pending mailbox
    /// to its owner. Cost is O(queued events): tenants without events are
    /// never touched, however many are registered.
    ///
    /// Delivery is bounded to the backlog present at entry. A collector's
    /// response can itself force evictions (a deferred GC touches pages,
    /// direct reclaim victimises other tenants, fresh notices appear), and
    /// under heavy overcommit that cascade is self-sustaining — draining
    /// to quiescence would livelock the scheduler with no mutator ever
    /// running again. Capping at the entry backlog interleaves the storm
    /// with time slices, so tenants keep finishing and the cascade dies
    /// out.
    fn deliver(&mut self) {
        let mut budget = self.vmm.notified_backlog();
        while budget > 0 {
            budget -= 1;
            let Some(pid) = self.vmm.next_notified() else {
                break;
            };
            let ti = self
                .pid_to_tenant
                .get(pid.index())
                .copied()
                .unwrap_or(usize::MAX);
            if ti == usize::MAX || self.tenants[ti].finished {
                // Not one of ours (or already exited): drop the mailbox so
                // the queue keeps moving.
                self.vmm.discard_events(pid);
                continue;
            }
            self.deliveries[ti] += 1;
            let tenant = &mut self.tenants[ti];
            let mut ctx = MemCtx::new(&mut self.vmm, &mut tenant.clock, tenant.pid);
            tenant.gc.handle_vm_events(&mut ctx);
        }
    }
}

impl core::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scheduler")
            .field("tenants", &self.tenants.len())
            .field("quantum", &self.quantum)
            .field("slices", &self.slices)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::CollectorKind;
    use heap::{AllocKind, GcHeap, Handle, MemCtx, OutOfMemory};
    use simtime::CostModel;
    use vmm::VmmConfig;

    /// Finishes on the first step without allocating a byte.
    struct Idle;

    impl Program for Idle {
        fn step(
            &mut self,
            _gc: &mut dyn GcHeap,
            _ctx: &mut MemCtx<'_>,
        ) -> Result<ProgramStatus, OutOfMemory> {
            Ok(ProgramStatus::Finished)
        }

        fn name(&self) -> &str {
            "idle"
        }

        fn progress(&self) -> f64 {
            1.0
        }
    }

    /// Allocates `total` nodes keeping the last `live` alive.
    struct Churn {
        total: usize,
        live: usize,
        done: usize,
        held: std::collections::VecDeque<Handle>,
    }

    impl Churn {
        fn new(total: usize, live: usize) -> Churn {
            Churn {
                total,
                live,
                done: 0,
                held: std::collections::VecDeque::new(),
            }
        }
    }

    impl Program for Churn {
        fn step(
            &mut self,
            gc: &mut dyn GcHeap,
            ctx: &mut MemCtx<'_>,
        ) -> Result<ProgramStatus, OutOfMemory> {
            for _ in 0..100 {
                if self.done >= self.total {
                    return Ok(ProgramStatus::Finished);
                }
                let h = gc.alloc(
                    ctx,
                    AllocKind::Scalar {
                        data_words: 6,
                        num_refs: 1,
                    },
                )?;
                self.held.push_back(h);
                if self.held.len() > self.live {
                    gc.drop_handle(self.held.pop_front().unwrap());
                }
                self.done += 1;
            }
            Ok(ProgramStatus::Running)
        }

        fn name(&self) -> &str {
            "churn"
        }

        fn progress(&self) -> f64 {
            self.done as f64 / self.total as f64
        }
    }

    fn fleet(n: usize, memory: usize, make: impl Fn(usize) -> Box<dyn Program>) -> Scheduler {
        fleet_with_heap(n, memory, 1 << 20, make)
    }

    fn fleet_with_heap(
        n: usize,
        memory: usize,
        heap: usize,
        make: impl Fn(usize) -> Box<dyn Program>,
    ) -> Scheduler {
        let mut vmm = Vmm::new(
            VmmConfig::builder().memory_bytes(memory).build(),
            CostModel::default(),
        );
        let mut tenants = Vec::new();
        for i in 0..n {
            let pid = vmm.register_process();
            let gc = CollectorKind::Bc.build(heap, telemetry::Tracer::disabled(), &mut vmm, pid);
            tenants.push(JvmProcess::new(pid, gc, make(i)));
        }
        let mut sched = Scheduler::new(vmm, Nanos::from_micros(100));
        sched.tenants = tenants;
        sched
    }

    #[test]
    fn round_robin_completes_every_tenant() {
        let mut sched = fleet(32, 64 << 20, |_| Box::new(Churn::new(2_000, 100)));
        sched.run_to_completion();
        assert!(!sched.timed_out());
        assert!(sched.tenants.iter().all(|t| t.finished));
        assert!(sched.tenants.iter().all(|t| t.failed.is_none()));
        assert!(sched.slices() >= 32);
    }

    #[test]
    fn slice_limit_reports_timeout() {
        let mut sched = fleet(4, 64 << 20, |_| Box::new(Churn::new(1_000_000, 100)));
        sched.max_slices = 8;
        sched.run_to_completion();
        assert!(sched.timed_out());
    }

    /// The acceptance criterion for the scaled multi-tenant experiment:
    /// delivery cost is O(events), not O(processes). A fleet dominated by
    /// idle tenants (no pages, so never any eviction notices) must never
    /// have those tenants visited by the pump, while the one thrashing
    /// tenant still hears about its evictions.
    #[test]
    fn pump_cost_is_proportional_to_events_not_tenants() {
        // 1 MB of RAM = 256 frames against a 2 MB heap: the busy tenant's
        // working set cannot fit, so kswapd constantly schedules its pages.
        let mut sched = fleet_with_heap(256, 1 << 20, 2 << 20, |i| {
            if i == 0 {
                Box::new(Churn::new(40_000, 8_000))
            } else {
                Box::new(Idle)
            }
        });
        sched.run_to_completion();
        assert!(!sched.timed_out());
        assert!(sched.tenants.iter().all(|t| t.finished));
        let d = sched.deliveries();
        assert!(
            d[0] > 0,
            "the thrashing tenant should have received eviction notices"
        );
        assert!(
            d[1..].iter().all(|&n| n == 0),
            "idle tenants must never be visited by the delivery loop"
        );
        // And the total is bounded by the events that actually fired, not
        // by tenants × slices.
        assert!(
            sched.total_deliveries() < sched.slices(),
            "deliveries ({}) should not scale with slices ({})",
            sched.total_deliveries(),
            sched.slices()
        );
    }

    #[test]
    fn identical_tenants_finish_at_identical_times() {
        let mut sched = fleet(8, 64 << 20, |_| Box::new(Churn::new(2_000, 100)));
        sched.run_to_completion();
        let first = sched.tenants[0].finish_time;
        assert!(first.is_some());
        assert!(sched.tenants.iter().all(|t| t.finish_time == first));
    }
}
