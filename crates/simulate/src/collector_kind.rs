//! The collector registry: every configuration the paper evaluates.

use core::fmt;

use bookmarking::{BcOptions, Bookmarking};
use collectors::{CopyMs, GenCopy, GenMs, MarkSweep, SemiSpace};
use heap::{GcHeap, HeapConfig, InjectFault, NurseryPolicy, PolicyKind, SanitizeLevel};
use telemetry::Tracer;
use vmm::{ProcessId, Vmm};

/// One of the collectors evaluated in §5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectorKind {
    /// The bookmarking collector (the paper's contribution).
    Bc,
    /// BC with bookmarking disabled: "BC w/Resizing only" (§5.3.2).
    BcResizeOnly,
    /// Whole-heap mark-sweep.
    MarkSweep,
    /// Whole-heap semispace copying.
    SemiSpace,
    /// Appel generational, copying mature space.
    GenCopy,
    /// Appel generational, mark-sweep mature space.
    GenMs,
    /// Whole-heap copy-into-mark-sweep.
    CopyMs,
    /// GenCopy with a fixed 4 MB nursery (§5.3.2).
    GenCopyFixed,
    /// GenMS with a fixed 4 MB nursery (§5.3.2).
    GenMsFixed,
}

impl CollectorKind {
    /// Every collector, in the paper's reporting order.
    pub const ALL: [CollectorKind; 9] = [
        CollectorKind::Bc,
        CollectorKind::BcResizeOnly,
        CollectorKind::MarkSweep,
        CollectorKind::SemiSpace,
        CollectorKind::GenCopy,
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
        CollectorKind::GenCopyFixed,
        CollectorKind::GenMsFixed,
    ];

    /// The collectors of the no-pressure comparison (Figure 2).
    pub const FIGURE2: [CollectorKind; 6] = [
        CollectorKind::Bc,
        CollectorKind::MarkSweep,
        CollectorKind::SemiSpace,
        CollectorKind::GenCopy,
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
    ];

    /// The collectors of the memory-pressure figures (3–5a; MarkSweep is
    /// excluded there because "runs with this collector can take hours").
    pub const PRESSURE: [CollectorKind; 5] = [
        CollectorKind::Bc,
        CollectorKind::SemiSpace,
        CollectorKind::GenCopy,
        CollectorKind::GenMs,
        CollectorKind::CopyMs,
    ];

    /// Builds a fresh collector instance, registering it with the VMM if
    /// it is VM-cooperative. Events the collector emits carry `tracer`'s
    /// per-pid label, which is set to the paper's collector label here.
    ///
    /// Runs the default heap-sizing policy: `Fixed` for every baseline,
    /// which BC upgrades to its own shrink-to-footprint behaviour. Use
    /// [`CollectorKind::build_with_policy`] to override.
    pub fn build(
        self,
        heap_bytes: usize,
        tracer: Tracer,
        vmm: &mut Vmm,
        pid: ProcessId,
    ) -> Box<dyn GcHeap> {
        self.build_with_policy(
            heap_bytes,
            None,
            SanitizeLevel::Off,
            None,
            1,
            tracer,
            vmm,
            pid,
        )
    }

    /// [`CollectorKind::build`] with an explicit heap-sizing policy.
    ///
    /// `None` keeps each collector's default (`Fixed` for baselines;
    /// BC treats `Fixed` as its built-in shrink-to-footprint). When the
    /// chosen policy wants VMM pressure notifications, the process is
    /// registered for them even for the otherwise VM-oblivious baselines,
    /// so the policy can observe eviction pressure. `sanitize` selects the
    /// verification level ([`SanitizeLevel::Off`] is free; `Full` adds the
    /// shadow re-trace after every collection). `sanitize_fault` arms a
    /// one-shot seeded collector bug for sanitizer self-tests; always
    /// `None` outside `tests/sanitize_faults.rs`. `gc_threads` sets the
    /// simulated GC worker count of the packet tracer (1 reproduces the
    /// sequential tracer byte-for-byte).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_policy(
        self,
        heap_bytes: usize,
        policy: Option<PolicyKind>,
        sanitize: SanitizeLevel,
        sanitize_fault: Option<InjectFault>,
        gc_threads: usize,
        tracer: Tracer,
        vmm: &mut Vmm,
        pid: ProcessId,
    ) -> Box<dyn GcHeap> {
        tracer.set_label(pid.as_u32(), self.label());
        let mut config = HeapConfig::builder()
            .heap_bytes(heap_bytes)
            .tracer(tracer)
            .sanitize(sanitize)
            .gc_threads(gc_threads)
            .build();
        config.sanitize_fault = sanitize_fault;
        if let Some(policy) = policy {
            config.policy = policy;
        }
        let wants_notifications = config.policy.wants_notifications();
        match self {
            CollectorKind::Bc | CollectorKind::BcResizeOnly => {
                // BC variants differ only in their cooperation options;
                // heap sizing is the shared policy layer's job.
                let options = if self == CollectorKind::Bc {
                    BcOptions::default()
                } else {
                    BcOptions::resizing_only()
                };
                let bc = Bookmarking::new(config, options);
                bc.register(vmm, pid);
                Box::new(bc)
            }
            CollectorKind::MarkSweep => {
                Self::register_policy(wants_notifications, vmm, pid);
                Box::new(MarkSweep::new(config))
            }
            CollectorKind::SemiSpace => {
                Self::register_policy(wants_notifications, vmm, pid);
                Box::new(SemiSpace::new(config))
            }
            CollectorKind::GenCopy => {
                Self::register_policy(wants_notifications, vmm, pid);
                Box::new(GenCopy::new(config))
            }
            CollectorKind::GenMs => {
                Self::register_policy(wants_notifications, vmm, pid);
                Box::new(GenMs::new(config))
            }
            CollectorKind::CopyMs => {
                Self::register_policy(wants_notifications, vmm, pid);
                Box::new(CopyMs::new(config))
            }
            CollectorKind::GenCopyFixed => {
                config.nursery = NurseryPolicy::FIXED_4MB;
                Self::register_policy(wants_notifications, vmm, pid);
                Box::new(GenCopy::new(config))
            }
            CollectorKind::GenMsFixed => {
                config.nursery = NurseryPolicy::FIXED_4MB;
                Self::register_policy(wants_notifications, vmm, pid);
                Box::new(GenMs::new(config))
            }
        }
    }

    /// Registers a baseline collector's process for pressure
    /// notifications when its sizing policy needs them. Under `Fixed`
    /// baselines stay VM-oblivious, so their event queues remain empty
    /// and behaviour is byte-identical to the policy-free code.
    fn register_policy(wants_notifications: bool, vmm: &mut Vmm, pid: ProcessId) {
        if wants_notifications {
            vmm.register_notifications(pid);
        }
    }

    /// The paper's label for this collector.
    pub fn label(self) -> &'static str {
        match self {
            CollectorKind::Bc => "BC",
            CollectorKind::BcResizeOnly => "BC w/Resizing only",
            CollectorKind::MarkSweep => "MarkSweep",
            CollectorKind::SemiSpace => "SemiSpace",
            CollectorKind::GenCopy => "GenCopy",
            CollectorKind::GenMs => "GenMS",
            CollectorKind::CopyMs => "CopyMS",
            CollectorKind::GenCopyFixed => "GenCopy (4MB nursery)",
            CollectorKind::GenMsFixed => "GenMS (4MB nursery)",
        }
    }
}

impl fmt::Display for CollectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{Clock, CostModel};
    use vmm::VmmConfig;

    #[test]
    fn every_kind_builds_and_allocates() {
        for kind in CollectorKind::ALL {
            let mut vmm = Vmm::new(
                VmmConfig::builder().memory_bytes(64 << 20).build(),
                CostModel::default(),
            );
            let mut clock = Clock::new();
            let pid = vmm.register_process();
            let mut gc = kind.build(8 << 20, Tracer::disabled(), &mut vmm, pid);
            let mut ctx = heap::MemCtx::new(&mut vmm, &mut clock, pid);
            let h = gc
                .alloc(
                    &mut ctx,
                    heap::AllocKind::Scalar {
                        data_words: 4,
                        num_refs: 1,
                    },
                )
                .expect("fresh heap allocates");
            gc.drop_handle(h);
            assert!(!kind.label().is_empty());
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn cooperative_kinds_register_for_notifications() {
        for (kind, expect) in [
            (CollectorKind::Bc, true),
            (CollectorKind::BcResizeOnly, true),
            (CollectorKind::GenMs, false),
        ] {
            let mut vmm = Vmm::new(
                VmmConfig::builder().memory_bytes(4 << 20).build(),
                CostModel::default(),
            );
            let mut clock = Clock::new();
            let pid = vmm.register_process();
            let _gc = kind.build(1 << 20, Tracer::disabled(), &mut vmm, pid);
            // Force pressure so notices would be queued for registrants.
            let hog = vmm.register_process();
            let mut probe = Clock::new();
            // Touch collector pages first so it owns evictable pages.
            let ctx = heap::MemCtx::new(&mut vmm, &mut clock, pid);
            let _ = ctx;
            for p in 0..300 {
                vmm.touch(pid, vmm::VirtPage::new(p), vmm::Access::Write, &mut probe);
            }
            for p in 0..712 {
                vmm.mlock(hog, vmm::VirtPage::new(p), &mut probe);
            }
            // Several pumps: the first clock pass only clears referenced
            // bits; later passes move pages to the inactive list and
            // schedule evictions.
            for _ in 0..4 {
                vmm.pump(&mut probe);
            }
            assert_eq!(
                vmm.has_events(pid),
                expect,
                "{kind}: notification registration mismatch"
            );
        }
    }

    #[test]
    fn pressure_policies_register_baselines_for_notifications() {
        for (policy, expect) in [
            (PolicyKind::Fixed, false),
            (PolicyKind::BcFootprint { regrow: false }, true),
            (PolicyKind::MemBalancer, true),
        ] {
            let mut vmm = Vmm::new(
                VmmConfig::builder().memory_bytes(4 << 20).build(),
                CostModel::default(),
            );
            let mut clock = Clock::new();
            let pid = vmm.register_process();
            let _gc = CollectorKind::GenMs.build_with_policy(
                1 << 20,
                Some(policy),
                SanitizeLevel::Off,
                None,
                1,
                Tracer::disabled(),
                &mut vmm,
                pid,
            );
            let hog = vmm.register_process();
            let mut probe = Clock::new();
            let ctx = heap::MemCtx::new(&mut vmm, &mut clock, pid);
            let _ = ctx;
            for p in 0..300 {
                vmm.touch(pid, vmm::VirtPage::new(p), vmm::Access::Write, &mut probe);
            }
            for p in 0..712 {
                vmm.mlock(hog, vmm::VirtPage::new(p), &mut probe);
            }
            for _ in 0..4 {
                vmm.pump(&mut probe);
            }
            assert_eq!(
                vmm.has_events(pid),
                expect,
                "GenMs under {policy:?}: notification registration mismatch"
            );
        }
    }
}
