//! Single- and multi-JVM benchmark runs, and the minimum-heap search.

use heap::{GcStats, MetricsSnapshot, PolicyKind, SanitizeLevel};
use simtime::{CostModel, Nanos, PauseRecord, PauseStats};
use telemetry::Tracer;
use vmm::{VmStats, Vmm, VmmConfig};

use crate::collector_kind::CollectorKind;
use crate::engine::{Engine, JvmProcess};
use crate::program::Program;
use crate::signalmem::{Signalmem, SignalmemConfig};

/// Configuration for one benchmark execution.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The collector under test.
    pub collector: CollectorKind,
    /// Heap size (the experiments' x-axis in Figures 2–3).
    pub heap_bytes: usize,
    /// Physical memory available to the machine.
    pub memory_bytes: usize,
    /// Optional memory pressure.
    pub pressure: Option<SignalmemConfig>,
    /// Cost model (defaults to the paper's testbed).
    pub costs: CostModel,
    /// Engine step limit (thrashing abort).
    pub max_steps: u64,
    /// Structured-event sink shared by every JVM and the VMM. Disabled by
    /// default; emitting is then a single branch per event site.
    pub tracer: Tracer,
    /// Heap-sizing policy override. `None` keeps each collector's default
    /// (`Fixed` for the baselines; BC's shrink-to-footprint for BC).
    pub policy: Option<PolicyKind>,
    /// Sanitizer level for every JVM in the run (`Off` by default; `Full`
    /// shadow-re-traces after each collection without changing results).
    pub sanitize: SanitizeLevel,
    /// A seeded collector bug, armed once per JVM, for sanitizer
    /// self-tests; `None` (the default) outside `tests/sanitize_faults.rs`.
    pub sanitize_fault: Option<heap::InjectFault>,
    /// Simulated GC worker count for every JVM's packet tracer; 1 (the
    /// default) reproduces the sequential tracer byte-for-byte.
    pub gc_threads: usize,
}

impl RunConfig {
    /// A run with the given collector and heap over `memory_bytes` of RAM.
    pub fn new(collector: CollectorKind, heap_bytes: usize, memory_bytes: usize) -> RunConfig {
        RunConfig {
            collector,
            heap_bytes,
            memory_bytes,
            pressure: None,
            costs: CostModel::default(),
            max_steps: 200_000_000,
            tracer: Tracer::disabled(),
            policy: None,
            sanitize: SanitizeLevel::Off,
            sanitize_fault: None,
            gc_threads: 1,
        }
    }
}

/// Metrics from one JVM's run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The collector that ran.
    pub collector: CollectorKind,
    /// Benchmark name.
    pub benchmark: String,
    /// Total execution time (simulated).
    pub exec_time: Nanos,
    /// Whether the heap was exhausted.
    pub oom: bool,
    /// Whether the engine aborted the run (thrashing beyond the step cap).
    pub timed_out: bool,
    /// Pause summary.
    pub pauses: PauseStats,
    /// Full pause log (input to BMU curves).
    pub pause_records: Vec<PauseRecord>,
    /// Collector counters.
    pub gc: GcStats,
    /// Paging counters.
    pub vm: VmStats,
    /// Unified GC + VM metrics (satellite of the telemetry subsystem); the
    /// `gc`, `vm`, and `pauses` fields above are views of the same data.
    pub metrics: MetricsSnapshot,
}

impl RunResult {
    /// Whether the run completed normally.
    pub fn ok(&self) -> bool {
        !self.oom && !self.timed_out
    }
}

/// Results of a multi-JVM run (Figure 7).
#[derive(Clone, Debug)]
pub struct MultiRunResult {
    /// Per-JVM results.
    pub jvms: Vec<RunResult>,
    /// Wall-clock elapsed: the latest finish time.
    pub total_elapsed: Nanos,
}

fn collect_result(engine: &Engine, idx: usize) -> RunResult {
    let jvm = &engine.jvms[idx];
    RunResult {
        collector: match jvm.gc.name() {
            "BC" => CollectorKind::Bc,
            "BC-resize" => CollectorKind::BcResizeOnly,
            "MarkSweep" => CollectorKind::MarkSweep,
            "SemiSpace" => CollectorKind::SemiSpace,
            "GenCopy" => CollectorKind::GenCopy,
            "GenMS" => CollectorKind::GenMs,
            _ => CollectorKind::CopyMs,
        },
        benchmark: jvm.program.name().to_string(),
        exec_time: jvm.finish_time.unwrap_or(jvm.clock.now()),
        oom: jvm.failed.is_some(),
        timed_out: engine.timed_out(),
        pauses: jvm.gc.pause_log().stats(),
        pause_records: jvm.gc.pause_log().records().to_vec(),
        gc: *jvm.gc.stats(),
        vm: *engine.vmm.stats(jvm.pid),
        metrics: jvm.gc.metrics(engine.vmm.stats(jvm.pid)),
    }
}

/// Runs one benchmark on one collector.
pub fn run(config: &RunConfig, program: Box<dyn Program>) -> RunResult {
    run_multi(config, vec![program]).jvms.remove(0)
}

/// Runs `programs.len()` JVM instances simultaneously (each with its own
/// `config.heap_bytes` heap), as in the paper's multiple-JVM experiment.
pub fn run_multi(config: &RunConfig, programs: Vec<Box<dyn Program>>) -> MultiRunResult {
    let mut vmm = Vmm::new(
        VmmConfig::builder()
            .memory_bytes(config.memory_bytes)
            .build(),
        config.costs.clone(),
    );
    vmm.set_tracer(config.tracer.clone());
    let mut jvms = Vec::new();
    for program in programs {
        let pid = vmm.register_process();
        let gc = config.collector.build_with_policy(
            config.heap_bytes,
            config.policy,
            config.sanitize,
            config.sanitize_fault,
            config.gc_threads,
            config.tracer.clone(),
            &mut vmm,
            pid,
        );
        jvms.push(JvmProcess::new(pid, gc, program));
    }
    let signalmem = config.pressure.map(|p| {
        let pid = vmm.register_process();
        Signalmem::new(p, pid)
    });
    let mut engine = Engine::new(vmm);
    engine.jvms = jvms;
    engine.signalmem = signalmem;
    engine.max_steps = config.max_steps;
    engine.run_to_completion();
    let jvm_results: Vec<RunResult> = (0..engine.jvms.len())
        .map(|i| collect_result(&engine, i))
        .collect();
    let total_elapsed = jvm_results
        .iter()
        .map(|r| r.exec_time)
        .max()
        .unwrap_or(Nanos::ZERO);
    MultiRunResult {
        jvms: jvm_results,
        total_elapsed,
    }
}

/// Binary-searches the minimum heap (in bytes, `granularity`-aligned) in
/// which `make_program()` completes without exhausting the heap — the
/// "Min. Heap" column of Table 1.
pub fn min_heap_search(
    collector: CollectorKind,
    memory_bytes: usize,
    make_program: &dyn Fn() -> Box<dyn Program>,
    lo_bytes: usize,
    hi_bytes: usize,
    granularity: usize,
) -> Option<usize> {
    let fits = |heap: usize| -> bool {
        let config = RunConfig::new(collector, heap, memory_bytes);
        let result = run(&config, make_program());
        result.ok()
    };
    let mut lo = lo_bytes / granularity; // lo: may or may not fit
    let mut hi = hi_bytes / granularity; // hi: must fit
    if !fits(hi * granularity) {
        return None;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid * granularity) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi * granularity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, ProgramStatus};
    use heap::{AllocKind, GcHeap, Handle, MemCtx, OutOfMemory};

    /// A tiny test program: allocates `total` list nodes in batches,
    /// keeping the last `live` alive.
    struct Churn {
        total: usize,
        live: usize,
        done: usize,
        held: std::collections::VecDeque<Handle>,
    }

    impl Churn {
        fn new(total: usize, live: usize) -> Churn {
            Churn {
                total,
                live,
                done: 0,
                held: std::collections::VecDeque::new(),
            }
        }
    }

    impl Program for Churn {
        fn step(
            &mut self,
            gc: &mut dyn GcHeap,
            ctx: &mut MemCtx<'_>,
        ) -> Result<ProgramStatus, OutOfMemory> {
            for _ in 0..100 {
                if self.done >= self.total {
                    return Ok(ProgramStatus::Finished);
                }
                let h = gc.alloc(
                    ctx,
                    AllocKind::Scalar {
                        data_words: 6,
                        num_refs: 1,
                    },
                )?;
                self.held.push_back(h);
                if self.held.len() > self.live {
                    let dead = self.held.pop_front().unwrap();
                    gc.drop_handle(dead);
                }
                self.done += 1;
            }
            Ok(ProgramStatus::Running)
        }

        fn name(&self) -> &str {
            "churn"
        }

        fn progress(&self) -> f64 {
            self.done as f64 / self.total as f64
        }
    }

    #[test]
    fn run_completes_and_reports_metrics() {
        let config = RunConfig::new(CollectorKind::GenMs, 2 << 20, 64 << 20);
        let result = run(&config, Box::new(Churn::new(50_000, 5_000)));
        assert!(result.ok(), "{result:?}");
        assert_eq!(result.benchmark, "churn");
        assert!(result.exec_time > Nanos::ZERO);
        assert_eq!(result.gc.objects_allocated, 50_000);
        assert!(result.gc.total_gcs() >= 1);
        assert!(result.pauses.count >= 1);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        // 5_000 live 32-byte objects (~160 KiB + churn) cannot fit 128 KiB.
        let config = RunConfig::new(CollectorKind::MarkSweep, 128 << 10, 64 << 20);
        let result = run(&config, Box::new(Churn::new(50_000, 5_000)));
        assert!(result.oom);
        assert!(!result.ok());
    }

    #[test]
    fn min_heap_search_brackets_the_live_set() {
        let make = || Box::new(Churn::new(20_000, 2_000)) as Box<dyn Program>;
        let min = min_heap_search(
            CollectorKind::MarkSweep,
            64 << 20,
            &make,
            64 << 10,
            16 << 20,
            64 << 10,
        )
        .expect("16 MB must fit");
        // Live set is ~64 KiB; the minimum heap must be between that and
        // a couple of MB.
        assert!(min >= 64 << 10, "min heap {min} absurdly small");
        assert!(min <= 4 << 20, "min heap {min} absurdly large");
        // And it must actually fit while min - granularity must not.
        let at_min = run(
            &RunConfig::new(CollectorKind::MarkSweep, min, 64 << 20),
            make(),
        );
        assert!(at_min.ok());
    }

    #[test]
    fn every_collector_finishes_the_churn() {
        for kind in CollectorKind::ALL {
            let config = RunConfig::new(kind, 8 << 20, 64 << 20);
            let result = run(&config, Box::new(Churn::new(30_000, 3_000)));
            assert!(
                result.ok(),
                "{kind} failed: oom={} timeout={}",
                result.oom,
                result.timed_out
            );
        }
    }

    #[test]
    fn two_jvms_share_the_machine() {
        let config = RunConfig::new(CollectorKind::Bc, 4 << 20, 64 << 20);
        let result = run_multi(
            &config,
            vec![
                Box::new(Churn::new(20_000, 2_000)),
                Box::new(Churn::new(20_000, 2_000)),
            ],
        );
        assert_eq!(result.jvms.len(), 2);
        assert!(result.jvms.iter().all(super::RunResult::ok));
        assert!(result.total_elapsed >= result.jvms[0].exec_time.min(result.jvms[1].exec_time));
    }

    #[test]
    fn pressure_slows_oblivious_collectors() {
        // Same workload, with and without signalmem squeezing the machine.
        let memory = 8 << 20; // 2048 frames
        let mut base = RunConfig::new(CollectorKind::GenMs, 4 << 20, memory);
        base.max_steps = 10_000_000;
        let calm = run(&base, Box::new(Churn::new(100_000, 30_000)));
        assert!(calm.ok());
        let mut squeezed = base.clone();
        squeezed.pressure = Some(SignalmemConfig::dynamic(6 << 20, Nanos::ZERO));
        let hot = run(&squeezed, Box::new(Churn::new(100_000, 30_000)));
        assert!(
            hot.exec_time > calm.exec_time,
            "pressure should cost time: {} vs {}",
            hot.exec_time,
            calm.exec_time
        );
        assert!(hot.vm.major_faults > calm.vm.major_faults);
    }
}
