//! Integration tests over the experiment harnesses themselves.

use simulate::experiments::{dynamic_pressure, multi_jvm, no_pressure_sweep, steady_pressure};
use simulate::{min_heap_search, CollectorKind, Program, ProgramStatus};

/// A fixed-size allocation program for harness tests.
struct Fixed {
    left: usize,
    live: Vec<heap::Handle>,
    cap: usize,
}

impl Fixed {
    fn boxed(total: usize, cap: usize) -> Box<dyn Program> {
        Box::new(Fixed {
            left: total,
            live: Vec::new(),
            cap,
        })
    }
}

impl Program for Fixed {
    fn step(
        &mut self,
        gc: &mut dyn heap::GcHeap,
        ctx: &mut heap::MemCtx<'_>,
    ) -> Result<ProgramStatus, heap::OutOfMemory> {
        for _ in 0..64 {
            if self.left == 0 {
                return Ok(ProgramStatus::Finished);
            }
            let costs = ctx.vmm.costs().mutator_work;
            ctx.clock.advance(costs);
            let h = gc.alloc(
                ctx,
                heap::AllocKind::Scalar {
                    data_words: 8,
                    num_refs: 1,
                },
            )?;
            self.live.push(h);
            if self.live.len() > self.cap {
                let dead = self.live.remove(0);
                gc.drop_handle(dead);
            }
            self.left -= 1;
        }
        Ok(ProgramStatus::Running)
    }

    fn name(&self) -> &str {
        "fixed"
    }

    fn progress(&self) -> f64 {
        0.5
    }
}

#[test]
fn no_pressure_sweep_is_faster_with_bigger_heaps() {
    let make = || Fixed::boxed(60_000, 4_000);
    let points = no_pressure_sweep(
        CollectorKind::MarkSweep,
        &[1 << 20, 4 << 20, 16 << 20],
        256 << 20,
        &make,
    );
    assert_eq!(points.len(), 3);
    assert!(points.iter().all(|p| p.result.ok()));
    // GC count strictly decreases with heap size; time follows.
    let gcs: Vec<u64> = points.iter().map(|p| p.result.gc.total_gcs()).collect();
    assert!(gcs[0] > gcs[1] && gcs[1] >= gcs[2], "{gcs:?}");
    assert!(points[0].result.exec_time >= points[2].result.exec_time);
}

#[test]
fn steady_pressure_pins_the_requested_fraction() {
    let make = || Fixed::boxed(60_000, 4_000);
    let heap = 4 << 20;
    let memory = 8 << 20;
    let r = steady_pressure(CollectorKind::Bc, heap, memory, 0.6, &make);
    assert!(r.ok());
    // The hog held 60% of the heap: 614 pages out of 2048 frames; BC must
    // have seen pressure only if its footprint crossed the remainder.
    // Either way the run records a consistent picture.
    assert!(r.vm.major_faults == 0 || r.gc.pages_discarded > 0);
}

#[test]
fn dynamic_pressure_target_zero_is_survivable() {
    // An extreme target (less than the live set) must not panic or hang:
    // the engine completes, possibly slowly, and reports honest numbers.
    let make = || Fixed::boxed(30_000, 2_000);
    let r = dynamic_pressure(CollectorKind::Bc, 2 << 20, 6 << 20, 1 << 20, 0.05, &make);
    assert!(r.ok() || r.oom, "must terminate cleanly");
}

#[test]
fn multi_jvm_runs_share_fairly_when_memory_suffices() {
    let make = || Fixed::boxed(30_000, 2_000);
    let result = multi_jvm(CollectorKind::GenMs, 4 << 20, 64 << 20, &make);
    assert_eq!(result.jvms.len(), 2);
    assert!(result.jvms.iter().all(simulate::RunResult::ok));
    let a = result.jvms[0].exec_time.as_nanos() as f64;
    let b = result.jvms[1].exec_time.as_nanos() as f64;
    assert!((a / b - 1.0).abs() < 0.02, "unfair scheduling: {a} vs {b}");
}

#[test]
fn min_heap_search_is_monotone_in_live_size() {
    let small = min_heap_search(
        CollectorKind::MarkSweep,
        256 << 20,
        &|| Fixed::boxed(20_000, 1_000),
        64 << 10,
        32 << 20,
        64 << 10,
    )
    .unwrap();
    let large = min_heap_search(
        CollectorKind::MarkSweep,
        256 << 20,
        &|| Fixed::boxed(20_000, 8_000),
        64 << 10,
        32 << 20,
        64 << 10,
    )
    .unwrap();
    assert!(
        large > small,
        "8x the live set needs a bigger heap: {small} vs {large}"
    );
}
